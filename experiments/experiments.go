// Package experiments regenerates every table and figure of the evaluation
// section (§4) of Carey & Livny, SIGMOD 1989. Each FigureN function runs
// the required parameter sweep and returns a Figure — labelled series of
// (x, y) points — that renders as an aligned text table. Shared sweeps are
// exposed as *Study types so one grid of simulations can feed several
// figures without re-running.
package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ddbm"
)

// DefaultThinkTimesMs is the standard load sweep: mean terminal think times
// spanning the paper's 0-120 second range.
func DefaultThinkTimesMs() []float64 {
	return []float64{0, 2000, 4000, 8000, 12000, 16000, 24000, 48000, 96000, 120000}
}

// Options tunes how experiment sweeps run. The zero value gives
// paper-shaped defaults.
type Options struct {
	// TimeScale multiplies every run's simulated duration (and warmup).
	// 1.0 (default) gives publication-quality lengths; benchmarks use a
	// smaller scale for speed.
	TimeScale float64
	// Seed seeds every run (default 1).
	Seed int64
	// ThinkTimesMs overrides the load sweep for the think-time figures.
	ThinkTimesMs []float64
	// Algorithms overrides the algorithm set (default: the paper's four
	// plus NO_DC).
	Algorithms []ddbm.Algorithm
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// Replicates runs every configuration this many times with seeds
	// Seed, Seed+1, ... and averages the results (default 1). Use 3-5 for
	// publication-grade smoothing of the high-contention points.
	Replicates int
	// Progress, if non-nil, receives one line per completed run.
	Progress io.Writer
	// TraceDir, if non-empty, writes one Chrome trace-event JSON file per
	// simulation run into this directory (created on demand), named
	// trace_<fnv64a of the config key>.json — deterministic and collision-
	// free across concurrent grid workers. Meant for small -scale runs:
	// publication-length sweeps produce very large traces.
	TraceDir string
}

func (o Options) withDefaults() Options {
	if o.TimeScale <= 0 {
		o.TimeScale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.ThinkTimesMs) == 0 {
		o.ThinkTimesMs = DefaultThinkTimesMs()
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = ddbm.Algorithms()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Replicates <= 0 {
		o.Replicates = 1
	}
	return o
}

// duration picks simulated length and warmup for one configuration: the
// 1-node saturated configurations have response times of minutes and need
// far longer runs to reach steady state than the 8-node ones.
func (o Options) duration(numProcNodes int) (simMs, warmupMs float64) {
	if numProcNodes <= 1 {
		return 3_000_000 * o.TimeScale, 600_000 * o.TimeScale
	}
	return 800_000 * o.TimeScale, 120_000 * o.TimeScale
}

// apply stamps the options onto a config.
func (o Options) apply(cfg *ddbm.Config) {
	cfg.SimTimeMs, cfg.WarmupMs = o.duration(cfg.NumProcNodes)
	cfg.Seed = o.Seed
}

// cfgKey renders a configuration as a deterministic lookup key (Config
// contains slices, so it cannot be a map key itself). It is a hand-rolled
// field-by-field builder rather than fmt.Sprintf("%+v", ...): the reflective
// format walked the whole struct on every grid lookup and dominated grid
// bookkeeping cost. Every Config field must appear here — TestCfgKey
// perturbs each field reflectively and fails if a change does not alter the
// key.
func cfgKey(cfg ddbm.Config) string {
	buf := make([]byte, 0, 192)
	num := func(v float64) {
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		buf = append(buf, '|')
	}
	integer := func(v int64) {
		buf = strconv.AppendInt(buf, v, 10)
		buf = append(buf, '|')
	}
	boolean := func(v bool) {
		if v {
			buf = append(buf, '1', '|')
		} else {
			buf = append(buf, '0', '|')
		}
	}
	integer(int64(cfg.Algorithm))
	boolean(cfg.StrictOPT)
	integer(int64(cfg.CommitProtocol))
	integer(int64(cfg.NumProcNodes))
	integer(int64(cfg.PartitionWays))
	integer(int64(cfg.NumRelations))
	integer(int64(cfg.PartsPerRelation))
	integer(int64(cfg.PagesPerFile))
	integer(int64(cfg.ReplicaCount))
	boolean(cfg.UpgradeWriteLocks)
	boolean(cfg.DeferRemoteWriteLocks)
	integer(int64(cfg.NumTerminals))
	num(cfg.ThinkTimeMs)
	integer(int64(cfg.AvgPagesPerPartition))
	num(cfg.WriteProb)
	num(cfg.InstPerPage)
	for _, c := range cfg.Classes {
		buf = append(buf, 'c')
		num(c.Frac)
		boolean(c.Sequential)
		integer(int64(c.FileCount))
		integer(int64(c.AvgPagesPerPartition))
		num(c.WriteProb)
		num(c.InstPerPage)
	}
	buf = append(buf, ';')
	boolean(cfg.SpreadHalfToTwice)
	num(cfg.HostMIPS)
	num(cfg.ProcMIPS)
	integer(int64(cfg.NumDisks))
	num(cfg.MinDiskMs)
	num(cfg.MaxDiskMs)
	num(cfg.InstPerUpdate)
	num(cfg.InstPerStartup)
	num(cfg.InstPerMsg)
	num(cfg.InstPerCCReq)
	num(cfg.DetectionIntervalMs)
	num(cfg.LockWaitTimeoutMs)
	integer(int64(cfg.ExecPattern))
	num(cfg.SimTimeMs)
	num(cfg.WarmupMs)
	integer(cfg.Seed)
	num(cfg.InitialRestartDelayMs)
	boolean(cfg.ModelLogging)
	boolean(cfg.Breakdown)
	boolean(cfg.Audit)
	boolean(cfg.Faults.Enabled)
	num(cfg.Faults.NodeMTTFMs)
	boolean(cfg.Faults.FixedInterFailure)
	num(cfg.Faults.MTTRMs)
	num(cfg.Faults.DetectMs)
	num(cfg.Faults.HostMTTFMs)
	num(cfg.Faults.HostMTTRMs)
	num(cfg.Faults.DropProb)
	num(cfg.Faults.DupProb)
	num(cfg.Faults.RetransmitDelayMs)
	return string(buf)
}

// runSim is the simulation entry point used by runGrid; tests substitute it
// to observe scheduling behavior without running real simulations.
var runSim = ddbm.Run

// run dispatches one grid cell: the plain entry point normally, or a
// traced run writing a per-configuration Chrome trace when TraceDir is
// set. cfg already carries its replicate's seed, and cfgKey includes the
// seed, so every replicate gets its own file.
func (o Options) run(cfg ddbm.Config) (ddbm.Result, error) {
	if o.TraceDir == "" {
		return runSim(cfg)
	}
	m, err := ddbm.NewMachine(cfg)
	if err != nil {
		return ddbm.Result{}, err
	}
	tr := m.EnableTracing()
	res := m.Run()
	h := fnv.New64a()
	io.WriteString(h, cfgKey(cfg))
	if err := os.MkdirAll(o.TraceDir, 0o755); err != nil {
		return res, err
	}
	path := filepath.Join(o.TraceDir, fmt.Sprintf("trace_%016x.json", h.Sum64()))
	f, err := os.Create(path)
	if err != nil {
		return res, err
	}
	err = ddbm.WriteChromeTrace(f, tr.Events(), cfg.NumProcNodes)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return res, err
}

// runGrid executes every configuration (deduplicated, replicated across
// seeds per Options.Replicates) and returns a lookup table keyed by
// cfgKey of the base configuration. Runs execute concurrently up to
// Workers. Once any run fails, no further simulations are launched — the
// first error is returned instead of silently burning the rest of the grid.
func runGrid(o Options, cfgs []ddbm.Config) (map[string]ddbm.Result, error) {
	uniq := make([]ddbm.Config, 0, len(cfgs))
	seen := make(map[string]bool, len(cfgs))
	for _, c := range cfgs {
		if k := cfgKey(c); !seen[k] {
			seen[k] = true
			uniq = append(uniq, c)
		}
	}
	// Every replicate gets a preallocated slot, indexed by replicate
	// number, so the accumulated results (and the Config retained by
	// averageResults) are independent of goroutine completion order.
	acc := make(map[string][]ddbm.Result, len(uniq))
	var mu sync.Mutex
	var firstErr error
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	sem := make(chan struct{}, o.Workers)
	var wg sync.WaitGroup
launch:
	for _, base := range uniq {
		key := cfgKey(base)
		slots := make([]ddbm.Result, o.Replicates)
		acc[key] = slots
		for rep := 0; rep < o.Replicates; rep++ {
			if failed() {
				break launch
			}
			cfg := base
			cfg.Seed = base.Seed + int64(rep)
			wg.Add(1)
			sem <- struct{}{}
			//ddbmlint:allow no-naked-goroutine host-parallel fan-out of independent simulations; each run is seed-deterministic and fills only its own replicate slot under mu, so grid output is independent of completion order
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				res, err := o.run(cfg)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				slots[rep] = res
				if o.Progress != nil {
					fmt.Fprintf(o.Progress, "ran %-5v nodes=%d ways=%d think=%gs pages=%d seed=%d: %.2f tps, %.0f ms\n",
						cfg.Algorithm, cfg.NumProcNodes, cfg.PartitionWays, cfg.ThinkTimeMs/1000,
						cfg.PagesPerFile, cfg.Seed, res.ThroughputTPS, res.MeanResponseMs)
				}
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	results := make(map[string]ddbm.Result, len(acc))
	for k, rs := range acc {
		results[k] = averageResults(rs)
	}
	return results, nil
}

// averageResults merges replicate runs: scalar metrics are averaged,
// counters summed, and the first run's config retained.
func averageResults(rs []ddbm.Result) ddbm.Result {
	if len(rs) == 1 {
		return rs[0]
	}
	out := rs[0]
	n := float64(len(rs))
	out.Commits, out.Aborts, out.MessagesSent, out.BlockCount = 0, 0, 0, 0
	out.LogForces, out.AbortPathLogForces = 0, 0
	out.Crashes, out.MessagesLost, out.InDoubtWindows = 0, 0, 0
	var tput, resp, hw, sd, max, ar, mr, blk, cpu, dsk, host, act, p50, p90, p99 float64
	var avail, good, indoubt, blkid, recov float64
	for _, r := range rs {
		out.Commits += r.Commits
		out.Aborts += r.Aborts
		out.MessagesSent += r.MessagesSent
		out.BlockCount += r.BlockCount
		out.LogForces += r.LogForces
		out.AbortPathLogForces += r.AbortPathLogForces
		tput += r.ThroughputTPS
		resp += r.MeanResponseMs
		hw += r.RespHalfWidth95
		sd += r.RespStdDev
		if r.MaxResponseMs > max {
			max = r.MaxResponseMs
		}
		ar += r.AbortRatio
		mr += r.MeanRestarts
		blk += r.MeanBlockMs
		cpu += r.ProcCPUUtil
		dsk += r.ProcDiskUtil
		host += r.HostCPUUtil
		act += r.AvgActiveTxns
		p50 += r.RespP50Ms
		p90 += r.RespP90Ms
		p99 += r.RespP99Ms
		out.Crashes += r.Crashes
		out.MessagesLost += r.MessagesLost
		out.InDoubtWindows += r.InDoubtWindows
		avail += r.Availability
		good += r.GoodputPerSec
		indoubt += r.InDoubtTimeMs
		blkid += r.BlockedInDoubtMs
		recov += r.RecoveryTimeMs
	}
	out.ThroughputTPS = tput / n
	out.MeanResponseMs = resp / n
	out.RespHalfWidth95 = hw / n
	out.RespStdDev = sd / n
	out.MaxResponseMs = max
	out.AbortRatio = ar / n
	out.MeanRestarts = mr / n
	out.MeanBlockMs = blk / n
	out.ProcCPUUtil = cpu / n
	out.ProcDiskUtil = dsk / n
	out.HostCPUUtil = host / n
	out.AvgActiveTxns = act / n
	out.RespP50Ms = p50 / n
	out.RespP90Ms = p90 / n
	out.RespP99Ms = p99 / n
	out.Availability = avail / n
	out.GoodputPerSec = good / n
	out.InDoubtTimeMs = indoubt / n
	out.BlockedInDoubtMs = blkid / n
	out.RecoveryTimeMs = recov / n
	out.PhaseMeanMs = averageMaps(rs, func(r *ddbm.Result) map[string]float64 { return r.PhaseMeanMs })
	out.PhaseP99Ms = averageMaps(rs, func(r *ddbm.Result) map[string]float64 { return r.PhaseP99Ms })
	out.AbortsByCause = nil
	for _, r := range rs {
		if r.AbortsByCause != nil && out.AbortsByCause == nil {
			out.AbortsByCause = make(map[string]int64)
		}
		for k, v := range r.AbortsByCause {
			out.AbortsByCause[k] += v
		}
	}
	return out
}

// averageMaps averages one of the per-phase breakdown maps across
// replicates, keeping nil when no replicate carried one (breakdown off).
func averageMaps(rs []ddbm.Result, get func(*ddbm.Result) map[string]float64) map[string]float64 {
	var out map[string]float64
	var n float64
	for i := range rs {
		if m := get(&rs[i]); m != nil {
			n++
			if out == nil {
				out = make(map[string]float64, len(m))
			}
			for k, v := range m {
				out[k] += v
			}
		}
	}
	for k := range out {
		out[k] = out[k] / n
	}
	return out
}

// Point is one (x, y) observation of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced table or figure: labelled series over a shared
// x-axis, rendering as an aligned text table.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// SeriesByLabel returns the series with the given label, or nil.
func (f *Figure) SeriesByLabel(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}

// Render writes the figure as an aligned text table: one row per x value,
// one column per series.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "  (y = %s)\n", f.YLabel)

	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	header := fmt.Sprintf("%12s", f.XLabel)
	for _, s := range f.Series {
		header += fmt.Sprintf(" %12s", s.Label)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, x := range sorted {
		row := fmt.Sprintf("%12.4g", x)
		for _, s := range f.Series {
			y, ok := lookup(s.Points, x)
			if ok {
				row += fmt.Sprintf(" %12.4g", y)
			} else {
				row += fmt.Sprintf(" %12s", "-")
			}
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintln(w)
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var sb strings.Builder
	f.Render(&sb)
	return sb.String()
}

func lookup(pts []Point, x float64) (float64, bool) {
	for _, p := range pts {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// algoLabel names an algorithm series exactly as the paper's legends do.
func algoLabel(a ddbm.Algorithm) string { return a.String() }
