package experiments

import (
	"fmt"

	"ddbm"
)

// The functions in this file go beyond the paper's published figures,
// covering the variations its footnotes mention (16/32-node machines,
// 32-read transactions) and ablations of design choices.

// MachineSizeSweep reproduces the footnote-7 extension: throughput speedup
// over the 1-node machine for sizes 1..32. Sizes above 8 require more
// partitions per relation, so PartsPerRelation is raised to the machine
// size (keeping the 8-pages-per-partition workload, i.e. transactions grow
// with the machine, as the footnote's "larger update transactions" did).
func MachineSizeSweep(opts Options, thinkMs float64) (*Figure, error) {
	o := opts.withDefaults()
	sizes := []int{1, 2, 4, 8, 16, 32}
	var cfgs []ddbm.Config
	mk := func(alg ddbm.Algorithm, n int) ddbm.Config {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = alg
		cfg.NumProcNodes = n
		cfg.PartitionWays = 0
		cfg.ThinkTimeMs = thinkMs
		if n > cfg.PartsPerRelation {
			cfg.PartsPerRelation = n
		}
		o.apply(&cfg)
		return cfg
	}
	for _, n := range sizes {
		for _, a := range o.Algorithms {
			cfgs = append(cfgs, mk(a, n))
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Ext A",
		Title:  fmt.Sprintf("Throughput vs machine size (think %g s)", thinkMs/1000),
		XLabel: "nodes",
		YLabel: "throughput (txns/s)",
	}
	for _, a := range o.Algorithms {
		s := Series{Label: algoLabel(a)}
		for _, n := range sizes {
			s.Points = append(s.Points, Point{X: float64(n), Y: results[cfgKey(mk(a, n))].ThroughputTPS})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// TransactionSizeSweep reproduces footnote 9: the same 8-node experiment
// with transactions of 32, 64 and 128 reads (4, 8 and 16 pages per
// partition), confirming the trends are size-independent.
func TransactionSizeSweep(opts Options, thinkMs float64) (*Figure, error) {
	o := opts.withDefaults()
	sizes := []int{4, 8, 16}
	mk := func(alg ddbm.Algorithm, pages int) ddbm.Config {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = alg
		cfg.ThinkTimeMs = thinkMs
		cfg.AvgPagesPerPartition = pages
		o.apply(&cfg)
		return cfg
	}
	var cfgs []ddbm.Config
	for _, pg := range sizes {
		for _, a := range o.Algorithms {
			cfgs = append(cfgs, mk(a, pg))
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Ext B",
		Title:  fmt.Sprintf("Throughput vs transaction size (8 nodes, think %g s)", thinkMs/1000),
		XLabel: "reads/txn",
		YLabel: "throughput (txns/s)",
	}
	for _, a := range o.Algorithms {
		s := Series{Label: algoLabel(a)}
		for _, pg := range sizes {
			s.Points = append(s.Points, Point{X: float64(pg * 8), Y: results[cfgKey(mk(a, pg))].ThroughputTPS})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ExecPatternSweep compares parallel (Gamma-style) and sequential
// (Non-Stop-SQL RPC-style) cohort execution on the 8-node, 8-way machine:
// response time vs think time for each algorithm under both patterns.
func ExecPatternSweep(opts Options) (*Figure, error) {
	o := opts.withDefaults()
	mk := func(alg ddbm.Algorithm, pat ddbm.ExecPattern, thinkMs float64) ddbm.Config {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = alg
		cfg.PartitionWays = 8
		cfg.ExecPattern = pat
		cfg.ThinkTimeMs = thinkMs
		o.apply(&cfg)
		return cfg
	}
	var cfgs []ddbm.Config
	for _, pat := range []ddbm.ExecPattern{ddbm.Parallel, ddbm.Sequential} {
		for _, a := range o.Algorithms {
			for _, tt := range o.ThinkTimesMs {
				cfgs = append(cfgs, mk(a, pat, tt))
			}
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Ext C",
		Title:  "Parallel vs sequential cohort execution (8-way, small DB)",
		XLabel: "think(s)",
		YLabel: "response time (s)",
	}
	for _, pat := range []ddbm.ExecPattern{ddbm.Parallel, ddbm.Sequential} {
		for _, a := range o.Algorithms {
			s := Series{Label: fmt.Sprintf("%s/%.3s", algoLabel(a), pat.String())}
			for _, tt := range o.ThinkTimesMs {
				s.Points = append(s.Points, Point{X: tt / 1000, Y: results[cfgKey(mk(a, pat, tt))].MeanResponseMs / 1000})
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}

// SnoopIntervalAblation measures 2PL's sensitivity to the global deadlock
// detection interval (the paper fixes it at 1 s and cites [Jenq89] on the
// timeout interval being critical for timeout-based schemes).
func SnoopIntervalAblation(opts Options, thinkMs float64) (*Figure, error) {
	o := opts.withDefaults()
	intervals := []float64{250, 500, 1000, 2000, 4000, 8000}
	mk := func(iv float64) ddbm.Config {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = ddbm.TwoPL
		cfg.PartitionWays = 8
		cfg.ThinkTimeMs = thinkMs
		cfg.DetectionIntervalMs = iv
		o.apply(&cfg)
		return cfg
	}
	var cfgs []ddbm.Config
	for _, iv := range intervals {
		cfgs = append(cfgs, mk(iv))
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Ext D",
		Title:  fmt.Sprintf("2PL sensitivity to Snoop detection interval (think %g s)", thinkMs/1000),
		XLabel: "interval(s)",
		YLabel: "throughput (txns/s)",
	}
	s := Series{Label: "2PL"}
	r := Series{Label: "resp(s)"}
	for _, iv := range intervals {
		res := results[cfgKey(mk(iv))]
		s.Points = append(s.Points, Point{X: iv / 1000, Y: res.ThroughputTPS})
		r.Points = append(r.Points, Point{X: iv / 1000, Y: res.MeanResponseMs / 1000})
	}
	fig.Series = append(fig.Series, s, r)
	return fig, nil
}

// O2PLSweep compares the unpresented fifth algorithm of the paper's
// simulator — optimistic 2PL ([Care88]; Table 4's "2PL and O2PL" note) —
// against 2PL and OPT across the load sweep: response time on the 8-way
// machine. O2PL takes read locks immediately but defers write locks to the
// first commit phase, trading shorter write-lock hold times for
// conversion-style deadlocks at prepare.
func O2PLSweep(opts Options) (*Figure, error) {
	o := opts.withDefaults()
	algos := []ddbm.Algorithm{ddbm.TwoPL, ddbm.O2PL, ddbm.OPT, ddbm.NoDC}
	mk := func(alg ddbm.Algorithm, thinkMs float64) ddbm.Config {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = alg
		cfg.PartitionWays = 8
		cfg.ThinkTimeMs = thinkMs
		o.apply(&cfg)
		return cfg
	}
	var cfgs []ddbm.Config
	for _, a := range algos {
		for _, tt := range o.ThinkTimesMs {
			cfgs = append(cfgs, mk(a, tt))
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Ext I",
		Title:  "O2PL vs 2PL vs OPT (8-way, small DB)",
		XLabel: "think(s)",
		YLabel: "response time (s)",
	}
	for _, a := range algos {
		s := Series{Label: algoLabel(a)}
		for _, tt := range o.ThinkTimesMs {
			s.Points = append(s.Points, Point{X: tt / 1000, Y: results[cfgKey(mk(a, tt))].MeanResponseMs / 1000})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// MixedWorkloadSweep exercises the multi-class workload model of Table 2
// (NumClasses > 1, which the paper's own experiments never use): a mix of
// short single-partition updaters and relation-wide read-only queries,
// sweeping the updater fraction and reporting each algorithm's throughput.
func MixedWorkloadSweep(opts Options, thinkMs float64) (*Figure, error) {
	o := opts.withDefaults()
	fracs := []float64{0, 0.25, 0.5, 0.75, 1}
	mk := func(alg ddbm.Algorithm, frac float64) ddbm.Config {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = alg
		cfg.PartitionWays = 8
		cfg.ThinkTimeMs = thinkMs
		switch frac {
		case 0:
			cfg.Classes = []ddbm.TxnClass{readerClass(1)}
		case 1:
			cfg.Classes = []ddbm.TxnClass{updaterClass(1)}
		default:
			cfg.Classes = []ddbm.TxnClass{updaterClass(frac), readerClass(1 - frac)}
		}
		o.apply(&cfg)
		return cfg
	}
	var cfgs []ddbm.Config
	for _, a := range o.Algorithms {
		for _, f := range fracs {
			cfgs = append(cfgs, mk(a, f))
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Ext H",
		Title:  fmt.Sprintf("Mixed workload: small updaters vs relation scans (think %g s)", thinkMs/1000),
		XLabel: "updater frac",
		YLabel: "throughput (txns/s)",
	}
	for _, a := range o.Algorithms {
		s := Series{Label: algoLabel(a)}
		for _, f := range fracs {
			s.Points = append(s.Points, Point{X: f, Y: results[cfgKey(mk(a, f))].ThroughputTPS})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func updaterClass(frac float64) ddbm.TxnClass {
	return ddbm.TxnClass{Frac: frac, FileCount: 1, AvgPagesPerPartition: 4, WriteProb: 0.5, InstPerPage: 4000}
}

func readerClass(frac float64) ddbm.TxnClass {
	return ddbm.TxnClass{Frac: frac, FileCount: 0, AvgPagesPerPartition: 8, WriteProb: 0, InstPerPage: 8000}
}

// ReplicationStudy reproduces the scenario of the paper's footnote 13
// (from [Care88]/[Care89]): replicated data with expensive (4K-instruction)
// messages, comparing standard 2PL (immediate remote-copy write locks),
// 2PL with remote write locks deferred to the first commit phase, and OPT.
// [Care88] found OPT could beat immediate 2PL here; [Care89] showed the
// deferred variant restores 2PL's dominance.
func ReplicationStudy(opts Options, thinkMs float64) (*Figure, error) {
	o := opts.withDefaults()
	replicas := []int{1, 2, 3}
	type variant struct {
		label  string
		alg    ddbm.Algorithm
		defer_ bool
	}
	variants := []variant{
		{"2PL", ddbm.TwoPL, false},
		{"2PL-defer", ddbm.TwoPL, true},
		{"OPT", ddbm.OPT, false},
		{"NO_DC", ddbm.NoDC, false},
	}
	mk := func(v variant, rc int) ddbm.Config {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = v.alg
		cfg.PartitionWays = 8
		cfg.ThinkTimeMs = thinkMs
		cfg.InstPerMsg = 4000
		cfg.ReplicaCount = rc
		cfg.DeferRemoteWriteLocks = v.defer_ && rc > 1
		o.apply(&cfg)
		return cfg
	}
	var cfgs []ddbm.Config
	for _, v := range variants {
		for _, rc := range replicas {
			cfgs = append(cfgs, mk(v, rc))
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Ext G",
		Title:  fmt.Sprintf("Replicated data with 4K-instruction messages (think %g s)", thinkMs/1000),
		XLabel: "copies",
		YLabel: "throughput (txns/s)",
	}
	for _, v := range variants {
		s := Series{Label: v.label}
		for _, rc := range replicas {
			s.Points = append(s.Points, Point{X: float64(rc), Y: results[cfgKey(mk(v, rc))].ThroughputTPS})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// TimeoutVsDetection compares 2PL's deadlock-detection scheme (the paper's)
// against the timeout scheme of footnote 2 across timeout settings —
// reproducing [Jenq89]'s observation that the timeout interval is a
// critical, sensitive parameter.
func TimeoutVsDetection(opts Options, thinkMs float64) (*Figure, error) {
	o := opts.withDefaults()
	timeouts := []float64{250, 1000, 4000, 16000}
	mk := func(timeoutMs float64) ddbm.Config {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = ddbm.TwoPL
		cfg.PartitionWays = 8
		cfg.ThinkTimeMs = thinkMs
		cfg.LockWaitTimeoutMs = timeoutMs // 0 = detection
		o.apply(&cfg)
		return cfg
	}
	cfgs := []ddbm.Config{mk(0)}
	for _, to := range timeouts {
		cfgs = append(cfgs, mk(to))
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Ext F",
		Title:  fmt.Sprintf("2PL deadlock handling: timeouts vs detection (think %g s)", thinkMs/1000),
		XLabel: "timeout(s)",
		YLabel: "throughput (txns/s)",
	}
	to := Series{Label: "timeout"}
	ab := Series{Label: "aborts/cmt"}
	for _, t := range timeouts {
		r := results[cfgKey(mk(t))]
		to.Points = append(to.Points, Point{X: t / 1000, Y: r.ThroughputTPS})
		ab.Points = append(ab.Points, Point{X: t / 1000, Y: r.AbortRatio})
	}
	det := results[cfgKey(mk(0))]
	detS := Series{Label: "detection"}
	for _, t := range timeouts {
		detS.Points = append(detS.Points, Point{X: t / 1000, Y: det.ThroughputTPS})
	}
	fig.Series = append(fig.Series, to, detS, ab)
	return fig, nil
}

// MessageCostSweep isolates the §4.4 message-cost effect: 8-way response
// time vs InstPerMsg for each algorithm at the given think time.
func MessageCostSweep(opts Options, thinkMs float64) (*Figure, error) {
	o := opts.withDefaults()
	costs := []float64{0, 1000, 2000, 4000, 8000}
	mk := func(alg ddbm.Algorithm, c float64) ddbm.Config {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = alg
		cfg.PartitionWays = 8
		cfg.ThinkTimeMs = thinkMs
		cfg.InstPerMsg = c
		o.apply(&cfg)
		return cfg
	}
	var cfgs []ddbm.Config
	for _, c := range costs {
		for _, a := range o.Algorithms {
			cfgs = append(cfgs, mk(a, c))
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Ext E",
		Title:  fmt.Sprintf("Response time vs message cost (8-way, think %g s)", thinkMs/1000),
		XLabel: "inst/msg(K)",
		YLabel: "response time (s)",
	}
	for _, a := range o.Algorithms {
		s := Series{Label: algoLabel(a)}
		for _, c := range costs {
			s.Points = append(s.Points, Point{X: c / 1000, Y: results[cfgKey(mk(a, c))].MeanResponseMs / 1000})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
