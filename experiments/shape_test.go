package experiments

import (
	"testing"

	"ddbm"
)

// These tests verify the paper's qualitative claims end-to-end at a reduced
// (but steady-state) scale. They take a couple of minutes in total and are
// skipped under -short.

func shapeOpts(thinks ...float64) Options {
	return Options{TimeScale: 0.25, ThinkTimesMs: thinks, Seed: 5}
}

func TestShapeAlgorithmOrderingUnderContention(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	// Paper §4.2: 2PL outperforms BTO, which outperforms WW, which
	// outperforms OPT, under load; NO_DC bounds everyone.
	st, err := RunMachineSizeStudySizes(shapeOpts(0), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	get := func(a ddbm.Algorithm) ddbm.Result { return st.Result(a, 8, 0) }
	tput := map[string]float64{
		"2PL": get(ddbm.TwoPL).ThroughputTPS,
		"BTO": get(ddbm.BTO).ThroughputTPS,
		"WW":  get(ddbm.WoundWait).ThroughputTPS,
		"OPT": get(ddbm.OPT).ThroughputTPS,
		"DC":  get(ddbm.NoDC).ThroughputTPS,
	}
	if !(tput["2PL"] > tput["BTO"] && tput["BTO"] > tput["WW"] && tput["WW"] > tput["OPT"]) {
		t.Errorf("throughput ordering violated: %+v (want 2PL > BTO > WW > OPT)", tput)
	}
	if !(tput["DC"] > tput["2PL"]) {
		t.Errorf("NO_DC (%v) does not bound 2PL (%v)", tput["DC"], tput["2PL"])
	}
	// Abort-ratio ordering mirrors it (the paper's explanation).
	ar2pl := get(ddbm.TwoPL).AbortRatio
	arOPT := get(ddbm.OPT).AbortRatio
	if !(arOPT > ar2pl) {
		t.Errorf("abort ratios: OPT %v should exceed 2PL %v", arOPT, ar2pl)
	}
}

func TestShapeResponseSpeedupHumps(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	// Paper §4.2 / Figure 5: response speedup ~6.5-8x at think 0, very
	// large at intermediate think times.
	st, err := RunMachineSizeStudy(shapeOpts(0, 24000))
	if err != nil {
		t.Fatal(err)
	}
	fig := st.Figure5()
	s := fig.SeriesByLabel("2PL")
	if s == nil {
		t.Fatal("missing 2PL series")
	}
	at := func(x float64) float64 {
		y, _ := lookup(s.Points, x)
		return y
	}
	if v := at(0); v < 4 || v > 12 {
		t.Errorf("speedup at think 0 = %v, want ~6.5 (4..12)", v)
	}
	if v := at(24); v < 20 {
		t.Errorf("speedup at think 24 s = %v, want the large intermediate hump (>20)", v)
	}
}

func TestShapePartitioningSpeedupLimits(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	// Paper §4.3 / Figure 9: ~no improvement at think 0; ~5x at high think
	// times (longest-cohort limit 64/12 = 5.33).
	o := shapeOpts(0, 48000)
	st, err := RunPartitioningStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	fig := st.Figure9()
	for _, label := range []string{"2PL", "NO_DC"} {
		s := fig.SeriesByLabel(label)
		y0, _ := lookup(s.Points, 0)
		y48, _ := lookup(s.Points, 48)
		if y0 > 2.5 {
			t.Errorf("%s: speedup %v at think 0; parallelism should not help at saturation", label, y0)
		}
		if y48 < 3.5 || y48 > 8 {
			t.Errorf("%s: speedup %v at think 48 s, want ~5 (3.5..8)", label, y48)
		}
	}
	// Paper: OPT has the largest speedup at the highest think times.
	opt, _ := lookup(fig.SeriesByLabel("OPT").Points, 48)
	twopl, _ := lookup(fig.SeriesByLabel("2PL").Points, 48)
	if opt < twopl {
		t.Errorf("OPT light-load speedup (%v) below 2PL (%v); paper says OPT gains most", opt, twopl)
	}
}

func TestShapeDegradationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	// Paper Figures 10/12: degradation vs NO_DC and abort ratios order
	// 2PL < BTO < WW < OPT at moderate load, 8-way, small DB.
	o := shapeOpts(8000)
	st, err := RunPartitioningStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	deg := st.Figure10()
	val := func(f *Figure, label string) float64 {
		y, _ := lookup(f.SeriesByLabel(label).Points, 8)
		return y
	}
	d2, db, dw, do := val(deg, "2PL"), val(deg, "BTO"), val(deg, "WW"), val(deg, "OPT")
	if !(d2 < db && db < dw && dw < do) {
		t.Errorf("degradation ordering violated: 2PL=%v BTO=%v WW=%v OPT=%v", d2, db, dw, do)
	}
	ab := st.Figure12()
	a2, ao := val(ab, "2PL"), val(ab, "OPT")
	if !(a2 < ao) {
		t.Errorf("abort ratio ordering violated: 2PL=%v OPT=%v", a2, ao)
	}
}

func TestShapeExpensiveMessagesHurtEightWay(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	// Paper Figures 16/17: with 4K-instruction messages several algorithms
	// (especially OPT) gain little or lose from 8-way vs 4-way. We assert
	// the weaker, robust form: OPT's 8-way advantage over 4-way collapses
	// compared to the free-message case.
	o := shapeOpts(8000)
	st, err := RunOverheadStudySettings(o, []OverheadSetting{NoOverheads, ExpensiveMessages}, []float64{8000})
	if err != nil {
		t.Fatal(err)
	}
	// (1) 4K-instruction messages make the highly partitioned (8-way)
	// system slower in absolute terms for every algorithm — parallel
	// transactions pay the multisite coordination tax.
	for _, a := range []ddbm.Algorithm{ddbm.TwoPL, ddbm.BTO, ddbm.WoundWait, ddbm.OPT, ddbm.NoDC} {
		free := st.Result(a, 8, 8000, NoOverheads).MeanResponseMs
		costly := st.Result(a, 8, 8000, ExpensiveMessages).MeanResponseMs
		if costly <= free {
			t.Errorf("%v: 4K messages did not slow the 8-way machine (free %.0f ms, costly %.0f ms)",
				a, free, costly)
		}
	}
	// (2) With 4K messages, OPT's curve flattens between 4-way and 8-way:
	// 8-way gains at most marginally over 4-way (paper Figs 16/17 show
	// OPT doing *worse* at 8-way; we allow noise at this reduced scale).
	o4 := st.Result(ddbm.OPT, 4, 8000, ExpensiveMessages).MeanResponseMs
	o8 := st.Result(ddbm.OPT, 8, 8000, ExpensiveMessages).MeanResponseMs
	if o4/o8 > 1.4 {
		t.Errorf("with 4K messages OPT still gains %.2fx from 8-way vs 4-way; paper shows ~none", o4/o8)
	}
}

func TestShapeFaultTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	// Extension (Ext K): under the same deterministic crash schedule,
	// centralized 2PC exposes strictly more in-doubt time per commit than
	// presumed abort — every 2PC cohort runs the full two phases, while PA
	// short-circuits read-only cohorts past the vulnerable vote-to-outcome
	// window entirely. This is the blocking penalty the presumed variants
	// exist to shrink.
	st, err := RunFaultToleranceStudyMTTFs(shapeOpts(8000), 8000, []float64{30_000})
	if err != nil {
		t.Fatal(err)
	}
	base := st.Result(ddbm.CentralizedTwoPC, 30_000)
	pa := st.Result(ddbm.PresumedAbort, 30_000)
	for _, r := range []struct {
		proto ddbm.CommitProtocol
		res   ddbm.Result
	}{{ddbm.CentralizedTwoPC, base}, {ddbm.PresumedAbort, pa}} {
		if r.res.Crashes == 0 {
			t.Fatalf("%v: the schedule crashed nothing; the study did not exercise faults", r.proto)
		}
		if r.res.Commits == 0 {
			t.Fatalf("%v: no commits under the crash schedule", r.proto)
		}
		if r.res.Availability <= 0 || r.res.Availability >= 1 {
			t.Errorf("%v: availability %v with crashes, want in (0,1)", r.proto, r.res.Availability)
		}
	}
	perCommit := func(r ddbm.Result) float64 { return r.InDoubtTimeMs / float64(r.Commits) }
	if b, p := perCommit(base), perCommit(pa); b <= p {
		t.Errorf("in-doubt exposure: centralized 2PC %.2f ms/commit not above presumed abort %.2f ms/commit",
			b, p)
	}
}

func TestShapeCommitProtocolSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	// Extension (Ext J): the presumed 2PC variants buy real savings over
	// the centralized baseline — presumed abort never exceeds it in
	// messages per commit or abort-path log forces, and presumed commit
	// trades commit acks for forced abort records.
	st, err := RunCommitProtocolStudyCosts(shapeOpts(0), 0, []float64{1000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	perCommit := func(total, commits int64) float64 { return float64(total) / float64(commits) }
	for _, cost := range []float64{1000, 4000} {
		base := st.Result(ddbm.CentralizedTwoPC, cost)
		pa := st.Result(ddbm.PresumedAbort, cost)
		pc := st.Result(ddbm.PresumedCommit, cost)
		for _, r := range []struct {
			proto ddbm.CommitProtocol
			res   ddbm.Result
		}{{ddbm.CentralizedTwoPC, base}, {ddbm.PresumedAbort, pa}, {ddbm.PresumedCommit, pc}} {
			if r.res.Commits == 0 {
				t.Fatalf("cost %v: %v made no commits", cost, r.proto)
			}
		}
		if m, b := perCommit(pa.MessagesSent, pa.Commits), perCommit(base.MessagesSent, base.Commits); m > b {
			t.Errorf("cost %v: presumed abort sends %.2f messages/commit, centralized %.2f", cost, m, b)
		}
		if m, b := perCommit(pc.MessagesSent, pc.Commits), perCommit(base.MessagesSent, base.Commits); m >= b {
			t.Errorf("cost %v: presumed commit sends %.2f messages/commit, centralized %.2f", cost, m, b)
		}
		// Abort-path logging: centralized and presumed abort never force
		// abort records; presumed commit must, whenever it aborts at all.
		if pa.AbortPathLogForces > base.AbortPathLogForces {
			t.Errorf("cost %v: presumed abort forced %d abort records, centralized %d",
				cost, pa.AbortPathLogForces, base.AbortPathLogForces)
		}
		if pa.AbortPathLogForces != 0 || base.AbortPathLogForces != 0 {
			t.Errorf("cost %v: abort-path forces nonzero (2PC %d, PA %d)",
				cost, base.AbortPathLogForces, pa.AbortPathLogForces)
		}
		if pc.Aborts > 0 && pc.AbortPathLogForces == 0 {
			t.Errorf("cost %v: presumed commit aborted %d times without forcing abort records", cost, pc.Aborts)
		}
		if f, b := perCommit(pa.LogForces, pa.Commits), perCommit(base.LogForces, base.Commits); f > b {
			t.Errorf("cost %v: presumed abort forces %.2f log writes/commit, centralized %.2f", cost, f, b)
		}
	}
}
