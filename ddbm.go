// Package ddbm is a discrete-event simulation study of concurrency control
// performance in distributed ("shared nothing") database machines — a full
// reproduction of Carey & Livny, "Parallelism and Concurrency Control
// Performance in Distributed Database Machines", ACM SIGMOD 1989.
//
// The model: transactions originate at terminals attached to a host node;
// each gets a coordinator process at the host and one cohort process at
// every processing node storing data it touches. Cohorts run sequentially
// or in parallel and finish through a centralized two-phase commit. Four
// concurrency control algorithms are provided — two-phase locking (with a
// rotating "Snoop" global deadlock detector), wound-wait, basic timestamp
// ordering, and optimistic certification — plus the NO_DC no-contention
// baseline.
//
// Quick start:
//
//	cfg := ddbm.DefaultConfig()
//	cfg.Algorithm = ddbm.TwoPL
//	cfg.ThinkTimeMs = 8000
//	res, err := ddbm.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("%.1f tps, %.0f ms response\n", res.ThroughputTPS, res.MeanResponseMs)
//
// The experiments package regenerates every figure of the paper's
// evaluation section on top of this API.
package ddbm

import (
	"io"

	"ddbm/internal/cc"
	"ddbm/internal/commit"
	"ddbm/internal/core"
	"ddbm/internal/obs"
)

// Algorithm identifies a concurrency control algorithm.
type Algorithm = cc.Kind

// The four algorithms of the paper plus the no-data-contention baseline.
const (
	// TwoPL is distributed two-phase locking (paper §2.2).
	TwoPL = cc.TwoPL
	// WoundWait is the wound-wait locking algorithm (paper §2.3).
	WoundWait = cc.WoundWait
	// BTO is basic timestamp ordering (paper §2.4).
	BTO = cc.BTO
	// OPT is distributed optimistic certification (paper §2.5).
	OPT = cc.OPT
	// NoDC is the "no data contention" baseline (paper §4.2).
	NoDC = cc.NoDC
	// O2PL is optimistic two-phase locking ([Care88]): read locks at access
	// time, write locks deferred to the first commit phase. The paper's
	// simulator carried it (Table 4 note) without presenting results.
	O2PL = cc.O2PL
)

// Algorithms lists the algorithms in the paper's presentation order
// (2PL, BTO, WW, OPT, NO_DC).
func Algorithms() []Algorithm { return cc.Kinds() }

// ParseAlgorithm converts a name ("2PL", "WW", "BTO", "OPT", "NO_DC") to an
// Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) { return cc.ParseKind(s) }

// CommitProtocol identifies a two-phase commit variant; set
// Config.CommitProtocol to choose one.
type CommitProtocol = commit.Kind

// The commit protocol variants.
const (
	// CentralizedTwoPC is the paper's centralized two-phase commit (§2.1,
	// §3.3): decisions and aborts are both acknowledged, and every cohort
	// forces a prepare record when logging is modeled. The default.
	CentralizedTwoPC = commit.CentralizedTwoPC
	// PresumedAbort is R*'s presumed-abort 2PC: unacknowledged, force-free
	// aborts and a read-only vote short-circuit.
	PresumedAbort = commit.PresumedAbort
	// PresumedCommit is R*'s presumed-commit 2PC: unacknowledged COMMIT
	// messages at the price of a forced collecting record per transaction
	// and forced, acknowledged abort records.
	PresumedCommit = commit.PresumedCommit
)

// CommitProtocols lists the protocol variants, default first.
func CommitProtocols() []CommitProtocol { return commit.Kinds() }

// ParseCommitProtocol converts a name ("2PC", "PA", "PC") to a
// CommitProtocol.
func ParseCommitProtocol(s string) (CommitProtocol, error) { return commit.ParseKind(s) }

// ExecPattern selects sequential or parallel cohort execution (paper §3.3).
type ExecPattern = core.ExecPattern

// Execution patterns.
const (
	// Parallel starts all cohorts together (Gamma/Teradata/Bubba style).
	Parallel = core.Parallel
	// Sequential runs cohorts one after another (Non-Stop SQL style).
	Sequential = core.Sequential
)

// Config collects every model parameter; see core.Config for field
// documentation and DefaultConfig for the paper's Table 4 settings.
type Config = core.Config

// TxnClass describes one transaction class of a multi-class workload
// (paper Table 2); set Config.Classes to use it.
type TxnClass = core.TxnClass

// Result reports the metrics of one simulation run.
type Result = core.Result

// DefaultConfig returns the paper's baseline parameter settings (Table 4).
func DefaultConfig() Config { return core.DefaultConfig() }

// Run simulates one machine configuration and returns its metrics.
func Run(cfg Config) (Result, error) { return core.Run(cfg) }

// Machine is an assembled database machine; use it instead of Run when you
// need to attach observers (Machine.ObserveTxns / Machine.TraceTxns)
// before running.
type Machine = core.Machine

// TxnEvent is one transaction life-cycle observation; see
// Machine.ObserveTxns.
type TxnEvent = core.TxnEvent

// Transaction life-cycle event kinds.
const (
	// TxnSubmitted: a terminal submitted a new transaction.
	TxnSubmitted = core.TxnSubmitted
	// TxnAttemptStarted: an execution attempt began.
	TxnAttemptStarted = core.TxnAttemptStarted
	// TxnAttemptAborted: the attempt aborted.
	TxnAttemptAborted = core.TxnAttemptAborted
	// TxnCommitted: the commit decision was made.
	TxnCommitted = core.TxnCommitted
	// TxnPrepared: every cohort voted yes in the first commit phase.
	TxnPrepared = core.TxnPrepared
	// TxnDecided: the commit protocol resolved the attempt ("commit" or
	// "abort" in Detail).
	TxnDecided = core.TxnDecided
)

// NewMachine builds (but does not run) a machine, for callers that attach
// observers; call its Run method to simulate.
func NewMachine(cfg Config) (*Machine, error) { return core.NewMachine(cfg) }

// Tracer records spans and instant events in simulated time; obtain one
// with Machine.EnableTracing before Run. A nil tracer is the disabled
// state and costs nothing on the simulation's hot paths.
type Tracer = obs.Tracer

// TraceEvent is one recorded observation (a span or an instant).
type TraceEvent = obs.Event

// TimeSeries holds the periodic probe samples of per-node gauges; obtain
// one with Machine.EnableProbes before Run.
type TimeSeries = obs.TimeSeries

// WriteChromeTrace renders trace events as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing); host is the host node's id.
func WriteChromeTrace(w io.Writer, events []TraceEvent, host int) error {
	return obs.WriteChromeTrace(w, events, host)
}

// WriteTraceJSONL renders trace events as a flat JSONL stream.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error {
	return obs.WriteJSONL(w, events)
}

// CheckChromeTrace structurally validates WriteChromeTrace output (JSON
// parses, spans nest, cohort/commit-phase spans sit under their attempt).
func CheckChromeTrace(data []byte) error { return obs.CheckChromeTrace(data) }

// PhaseNames returns the breakdown phase names in canonical ledger order
// — the key set of Result.PhaseMeanMs and Result.PhaseP99Ms.
func PhaseNames() []string { return obs.PhaseNames() }

// BreakdownSnapshot is the detailed time-breakdown accounting a run with
// Config.Breakdown collects: per-class × per-phase response-time rows and
// per-node × per-cause abort counts. Obtain one with Machine.Breakdown
// after Run; the aggregate view is on Result (PhaseMeanMs, PhaseP99Ms,
// AbortsByCause).
type BreakdownSnapshot = obs.BreakdownSnapshot

// WriteBreakdownJSONL renders a breakdown snapshot as a JSONL stream
// (one phase or abort-cause row per line, tagged by a "row" field).
func WriteBreakdownJSONL(w io.Writer, snap *BreakdownSnapshot) error {
	return obs.WriteBreakdownJSONL(w, snap)
}

// WriteBreakdownCSV renders a breakdown snapshot as a single CSV table.
func WriteBreakdownCSV(w io.Writer, snap *BreakdownSnapshot) error {
	return obs.WriteBreakdownCSV(w, snap)
}
