// Benchmarks: one per table/figure of the paper's evaluation section. Each
// benchmark regenerates its figure at a reduced simulated-time scale (the
// cmd/experiments binary produces the publication-length versions) and
// reports the figure's headline numbers as custom metrics, so `go test
// -bench .` doubles as a quick shape check of the whole reproduction.
package ddbm_test

import (
	"testing"

	"ddbm"
	"ddbm/experiments"
)

// benchOpts returns reduced-scale options sized for benchmarking.
func benchOpts() experiments.Options {
	return experiments.Options{
		TimeScale:    0.03,
		ThinkTimesMs: []float64{0, 8000, 48000},
	}
}

// BenchmarkTableParams exercises Table 1-4 parameter handling: building a
// machine from the paper's default configuration.
func BenchmarkTableParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ddbm.DefaultConfig()
		cfg.SimTimeMs = 1000
		cfg.WarmupMs = 100
		if _, err := ddbm.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMachineFig(b *testing.B, pick func(*experiments.MachineSizeStudy) *experiments.Figure, metric string, sel func(*experiments.Figure) float64) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		st, err := experiments.RunMachineSizeStudy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = sel(pick(st))
	}
	b.ReportMetric(last, metric)
}

func benchPartFig(b *testing.B, pick func(*experiments.PartitioningStudy) *experiments.Figure, metric string, sel func(*experiments.Figure) float64) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		st, err := experiments.RunPartitioningStudy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = sel(pick(st))
	}
	b.ReportMetric(last, metric)
}

func benchOverheadFig(b *testing.B, pick func(*experiments.OverheadStudy) *experiments.Figure, metric string, sel func(*experiments.Figure) float64) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		st, err := experiments.RunOverheadStudy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = sel(pick(st))
	}
	b.ReportMetric(last, metric)
}

// firstY returns series label's y at the given x (0 if absent).
func firstY(f *experiments.Figure, label string, x float64) float64 {
	s := f.SeriesByLabel(label)
	if s == nil {
		return 0
	}
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return 0
}

// BenchmarkFigure2 regenerates throughput vs think time (1- and 8-node).
func BenchmarkFigure2(b *testing.B) {
	benchMachineFig(b, (*experiments.MachineSizeStudy).Figure2, "2PL-8n-tps@0s",
		func(f *experiments.Figure) float64 { return firstY(f, "2PL/8n", 0) })
}

// BenchmarkFigure3 regenerates response time vs think time.
func BenchmarkFigure3(b *testing.B) {
	benchMachineFig(b, (*experiments.MachineSizeStudy).Figure3, "2PL-8n-resp_s@0s",
		func(f *experiments.Figure) float64 { return firstY(f, "2PL/8n", 0) })
}

// BenchmarkFigure4 regenerates throughput speedups.
func BenchmarkFigure4(b *testing.B) {
	benchMachineFig(b, (*experiments.MachineSizeStudy).Figure4, "2PL-speedup@0s",
		func(f *experiments.Figure) float64 { return firstY(f, "2PL", 0) })
}

// BenchmarkFigure5 regenerates response-time speedups.
func BenchmarkFigure5(b *testing.B) {
	benchMachineFig(b, (*experiments.MachineSizeStudy).Figure5, "2PL-speedup@48s",
		func(f *experiments.Figure) float64 { return firstY(f, "2PL", 48) })
}

// BenchmarkFigure6 regenerates disk utilizations.
func BenchmarkFigure6(b *testing.B) {
	benchMachineFig(b, (*experiments.MachineSizeStudy).Figure6, "2PL-8n-disk@0s",
		func(f *experiments.Figure) float64 { return firstY(f, "2PL/8n", 0) })
}

// BenchmarkFigure7 regenerates CPU utilizations.
func BenchmarkFigure7(b *testing.B) {
	benchMachineFig(b, (*experiments.MachineSizeStudy).Figure7, "2PL-8n-cpu@0s",
		func(f *experiments.Figure) float64 { return firstY(f, "2PL/8n", 0) })
}

// BenchmarkFigure8 regenerates the large-DB partitioning improvement.
func BenchmarkFigure8(b *testing.B) {
	benchPartFig(b, (*experiments.PartitioningStudy).Figure8, "2PL-speedup@48s",
		func(f *experiments.Figure) float64 { return firstY(f, "2PL", 48) })
}

// BenchmarkFigure9 regenerates the small-DB partitioning improvement.
func BenchmarkFigure9(b *testing.B) {
	benchPartFig(b, (*experiments.PartitioningStudy).Figure9, "OPT-speedup@48s",
		func(f *experiments.Figure) float64 { return firstY(f, "OPT", 48) })
}

// BenchmarkFigure10 regenerates 8-way degradations vs NO_DC.
func BenchmarkFigure10(b *testing.B) {
	benchPartFig(b, (*experiments.PartitioningStudy).Figure10, "OPT-degr%@8s",
		func(f *experiments.Figure) float64 { return firstY(f, "OPT", 8) })
}

// BenchmarkFigure11 regenerates 1-way degradations vs NO_DC.
func BenchmarkFigure11(b *testing.B) {
	benchPartFig(b, (*experiments.PartitioningStudy).Figure11, "OPT-degr%@8s",
		func(f *experiments.Figure) float64 { return firstY(f, "OPT", 8) })
}

// BenchmarkFigure12 regenerates 8-way abort ratios.
func BenchmarkFigure12(b *testing.B) {
	benchPartFig(b, (*experiments.PartitioningStudy).Figure12, "OPT-aborts@0s",
		func(f *experiments.Figure) float64 { return firstY(f, "OPT", 0) })
}

// BenchmarkFigure13 regenerates 1-way abort ratios.
func BenchmarkFigure13(b *testing.B) {
	benchPartFig(b, (*experiments.PartitioningStudy).Figure13, "OPT-aborts@0s",
		func(f *experiments.Figure) float64 { return firstY(f, "OPT", 0) })
}

// BenchmarkFigure14 regenerates zero-overhead partitioning speedups, think 0.
func BenchmarkFigure14(b *testing.B) {
	benchOverheadFig(b, (*experiments.OverheadStudy).Figure14, "2PL-speedup@8way",
		func(f *experiments.Figure) float64 { return firstY(f, "2PL", 8) })
}

// BenchmarkFigure15 regenerates zero-overhead partitioning speedups, think 8 s.
func BenchmarkFigure15(b *testing.B) {
	benchOverheadFig(b, (*experiments.OverheadStudy).Figure15, "2PL-speedup@8way",
		func(f *experiments.Figure) float64 { return firstY(f, "2PL", 8) })
}

// BenchmarkFigure16 regenerates 4K-message partitioning speedups, think 0.
func BenchmarkFigure16(b *testing.B) {
	benchOverheadFig(b, (*experiments.OverheadStudy).Figure16, "OPT-speedup@8way",
		func(f *experiments.Figure) float64 { return firstY(f, "OPT", 8) })
}

// BenchmarkFigure17 regenerates 4K-message partitioning speedups, think 8 s.
func BenchmarkFigure17(b *testing.B) {
	benchOverheadFig(b, (*experiments.OverheadStudy).Figure17, "OPT-speedup@8way",
		func(f *experiments.Figure) float64 { return firstY(f, "OPT", 8) })
}
